# Empty compiler generated dependencies file for fig11_insert_high_contention.
# This may be replaced when dependencies are built.
