file(REMOVE_RECURSE
  "../bench/fig11_insert_high_contention"
  "../bench/fig11_insert_high_contention.pdb"
  "CMakeFiles/fig11_insert_high_contention.dir/fig11_insert_high_contention.cpp.o"
  "CMakeFiles/fig11_insert_high_contention.dir/fig11_insert_high_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_insert_high_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
