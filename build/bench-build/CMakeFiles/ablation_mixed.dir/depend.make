# Empty dependencies file for ablation_mixed.
# This may be replaced when dependencies are built.
