file(REMOVE_RECURSE
  "../bench/ablation_mixed"
  "../bench/ablation_mixed.pdb"
  "CMakeFiles/ablation_mixed.dir/ablation_mixed.cpp.o"
  "CMakeFiles/ablation_mixed.dir/ablation_mixed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
