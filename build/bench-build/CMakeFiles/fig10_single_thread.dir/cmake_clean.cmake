file(REMOVE_RECURSE
  "../bench/fig10_single_thread"
  "../bench/fig10_single_thread.pdb"
  "CMakeFiles/fig10_single_thread.dir/fig10_single_thread.cpp.o"
  "CMakeFiles/fig10_single_thread.dir/fig10_single_thread.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_single_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
