file(REMOVE_RECURSE
  "../bench/appendix_level_histogram"
  "../bench/appendix_level_histogram.pdb"
  "CMakeFiles/appendix_level_histogram.dir/appendix_level_histogram.cpp.o"
  "CMakeFiles/appendix_level_histogram.dir/appendix_level_histogram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_level_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
