# Empty dependencies file for appendix_level_histogram.
# This may be replaced when dependencies are built.
