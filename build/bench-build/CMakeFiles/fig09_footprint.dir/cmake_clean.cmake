file(REMOVE_RECURSE
  "../bench/fig09_footprint"
  "../bench/fig09_footprint.pdb"
  "CMakeFiles/fig09_footprint.dir/fig09_footprint.cpp.o"
  "CMakeFiles/fig09_footprint.dir/fig09_footprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
