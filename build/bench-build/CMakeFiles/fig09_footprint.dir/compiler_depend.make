# Empty compiler generated dependencies file for fig09_footprint.
# This may be replaced when dependencies are built.
