// quickstart.cpp — a five-minute tour of the cache-trie public API.
//
//   build:  cmake -B build -G Ninja && cmake --build build
//   run:    ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "cachetrie/cache_trie.hpp"

int main() {
  // A CacheTrie maps keys to values, is safe for any number of concurrent
  // readers and writers, and needs no tuning for typical use.
  cachetrie::CacheTrie<std::string, int> ages;

  // insert() upserts: true means the key was new.
  ages.insert("ada", 36);
  ages.insert("grace", 85);
  const bool was_new = ages.insert("ada", 37);  // replaces, returns false
  std::printf("ada re-insert was_new=%s\n", was_new ? "true" : "false");

  // lookup() returns std::optional<V>; it is wait-free.
  if (auto v = ages.lookup("ada")) {
    std::printf("ada -> %d\n", *v);
  }
  std::printf("bob present: %s\n", ages.contains("bob") ? "yes" : "no");

  // Conditional updates, mirroring java.util.concurrent.ConcurrentMap.
  ages.put_if_absent("bob", 30);   // inserts
  ages.put_if_absent("bob", 99);   // no-op: already present
  ages.replace("bob", 31);         // replaces: present
  ages.replace_if_equals("bob", 31, 32);  // CAS on the value
  std::printf("bob -> %d\n", ages.lookup("bob").value());

  // remove() returns the removed value.
  if (auto removed = ages.remove("grace")) {
    std::printf("removed grace -> %d\n", *removed);
  }

  // Whole-structure operations (exact when quiescent).
  std::printf("size = %zu\n", ages.size());
  ages.for_each([](const std::string& k, const int& v) {
    std::printf("  %s = %d\n", k.c_str(), v);
  });
  std::printf("footprint = %zu bytes\n", ages.footprint_bytes());

  // Tuning knobs live in cachetrie::Config — e.g. the paper's "w/o cache"
  // variant used in the evaluation:
  cachetrie::Config no_cache;
  no_cache.use_cache = false;
  cachetrie::CacheTrie<int, int> plain_trie(no_cache);
  plain_trie.insert(1, 2);
  std::printf("w/o-cache variant works too: %d\n",
              plain_trie.lookup(1).value());
  return 0;
}
