// word_frequency.cpp — parallel word-frequency counting over a synthesized
// corpus: the classic shared-dictionary workload from the paper's
// motivation (a dictionary under concurrent inserts and lookups with a
// skewed, Zipf-like key distribution).
//
// Each worker tokenizes its shard of the corpus and bumps per-word counters
// in one shared CacheTrie using a replace_if_equals CAS loop; at the end
// the counts must equal a sequential recount exactly.
//
//   run: ./build/examples/word_frequency [threads] [words-per-thread]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "harness/thread_team.hpp"
#include "util/rng.hpp"

namespace {

// A small vocabulary with a heavy-tailed rank distribution (rank r drawn
// with weight ~ 1/r), approximating natural-language word frequencies.
std::string word_at(std::size_t rank) {
  std::string w;
  std::size_t r = rank + 1;
  while (r != 0) {
    w += static_cast<char>('a' + (r % 26));
    r /= 26;
  }
  return w;
}

std::size_t zipf_rank(cachetrie::util::XorShift64Star& rng,
                      std::size_t vocab) {
  // Inverse-CDF-free approximation: repeatedly halve the range with p=1/2.
  std::size_t lo = 0;
  std::size_t hi = vocab;
  while (hi - lo > 1 && (rng.next() & 1) != 0) {
    hi = lo + (hi - lo) / 2;
  }
  return lo + rng.next_below(hi - lo);
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t per_thread =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 200000;
  constexpr std::size_t kVocab = 20000;

  cachetrie::CacheTrie<std::string, std::uint64_t> counts;

  // Pre-generate shards so tokenization cost stays out of the parallel
  // section's interesting part.
  std::vector<std::vector<std::string>> shards(threads);
  for (int t = 0; t < threads; ++t) {
    cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(t) + 1};
    shards[t].reserve(per_thread);
    for (std::size_t i = 0; i < per_thread; ++i) {
      shards[t].push_back(word_at(zipf_rank(rng, kVocab)));
    }
  }

  const double ms = cachetrie::harness::run_team_ms(threads, [&](int t) {
    for (const auto& w : shards[t]) {
      // Lock-free counter bump: put_if_absent covers the first sighting,
      // replace_if_equals CASes the increment.
      while (true) {
        const auto cur = counts.lookup(w);
        if (!cur.has_value()) {
          if (counts.put_if_absent(w, 1)) break;
        } else if (counts.replace_if_equals(w, *cur, *cur + 1)) {
          break;
        }
      }
    }
  });

  // Sequential recount as ground truth.
  std::map<std::string, std::uint64_t> expected;
  for (const auto& shard : shards) {
    for (const auto& w : shard) ++expected[w];
  }
  std::uint64_t mismatches = 0;
  for (const auto& [w, n] : expected) {
    if (counts.lookup(w).value_or(0) != n) ++mismatches;
  }

  std::uint64_t total = 0;
  std::string top_word;
  std::uint64_t top_count = 0;
  counts.for_each([&](const std::string& w, const std::uint64_t& n) {
    total += n;
    if (n > top_count) {
      top_count = n;
      top_word = w;
    }
  });

  std::printf("threads            : %d\n", threads);
  std::printf("words counted      : %llu\n",
              static_cast<unsigned long long>(total));
  std::printf("distinct words     : %zu\n", counts.size());
  std::printf("most frequent      : \"%s\" x%llu\n", top_word.c_str(),
              static_cast<unsigned long long>(top_count));
  std::printf("wall time          : %.1f ms (%.2f Mwords/s)\n", ms,
              static_cast<double>(total) / ms / 1000.0);
  std::printf("count mismatches   : %llu (must be 0)\n",
              static_cast<unsigned long long>(mismatches));
  std::printf("trie footprint     : %.1f KiB\n",
              static_cast<double>(counts.footprint_bytes()) / 1024.0);
  return mismatches == 0 ? 0 : 1;
}
