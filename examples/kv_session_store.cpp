// kv_session_store.cpp — an in-memory session store under realistic churn:
// a mixed workload (85% lookups / 10% logins / 5% logouts, skewed towards
// hot sessions) runs on several threads while the main thread reports
// throughput, live-session count, structure footprint and the adaptive
// cache level. Shows the operational/observability side of the API
// (Config, Stats, cache_level, footprint_bytes).
//
//   run: ./build/examples/kv_session_store [threads] [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "util/rng.hpp"

namespace {

struct Session {
  std::uint64_t user_id;
  std::uint64_t login_time;
  std::uint32_t flags;
};

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 3;

  cachetrie::Config cfg;
  cfg.collect_stats = true;  // cheap enough for an ops dashboard
  cachetrie::CacheTrie<std::uint64_t, Session> store(cfg);

  constexpr std::uint64_t kSessionSpace = 1 << 20;
  // Warm the store with an initial population.
  for (std::uint64_t s = 0; s < 200000; ++s) {
    store.insert(s * 7 + 1, Session{s, 0, 0});
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(t) + 1};
      std::uint64_t local_ops = 0;
      std::uint64_t now = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // Skew towards a hot subset: 3/4 of traffic hits 1/16 of the space.
        std::uint64_t sid = rng.next_below(kSessionSpace);
        if (rng.next_below(4) != 0) sid /= 16;
        sid = sid * 7 + 1;
        const std::uint64_t dice = rng.next_below(100);
        if (dice < 85) {
          (void)store.lookup(sid);
        } else if (dice < 95) {
          store.insert(sid, Session{sid >> 3, ++now, 0});
        } else {
          (void)store.remove(sid);
        }
        if ((++local_ops & 1023) == 0) {
          ops.fetch_add(1024, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int s = 0; s < seconds; ++s) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const auto& st = store.stats();
    std::printf(
        "[t+%ds] ops/s=%.2fM cache_level=%d fast_hits=%llu samples=%llu "
        "expansions=%llu compressions=%llu\n",
        s + 1, static_cast<double>(ops.exchange(0)) / 1e6, store.cache_level(),
        static_cast<unsigned long long>(st.cache_fast_hits.load()),
        static_cast<unsigned long long>(st.sampling_passes.load()),
        static_cast<unsigned long long>(st.expansions.load()),
        static_cast<unsigned long long>(st.compressions.load()));
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  std::printf("live sessions : %zu\n", store.size());
  std::printf("footprint     : %.1f MiB\n",
              static_cast<double>(store.footprint_bytes()) / (1024.0 * 1024.0));
  const auto issues = store.debug_validate();
  std::printf("invariants    : %s\n", issues.empty() ? "ok" : "VIOLATED");
  return issues.empty() ? 0 : 1;
}
