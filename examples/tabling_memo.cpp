// tabling_memo.cpp — concurrent tabling/memoization, the use-case that
// motivated insert-only concurrent tries in Prolog engines (Areias & Rocha,
// cited in the paper's related work): many workers solve overlapping
// subproblems and share results through a concurrent dictionary so each
// subproblem is computed once-ish.
//
// Workload: total stopping times of the Collatz iteration. The recursion
// x -> x/2 | 3x+1 revisits the same values from many starting points, so a
// shared memo table turns O(chain^2) work into O(chain).
//
//   run: ./build/examples/tabling_memo [threads] [limit]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "harness/thread_team.hpp"

namespace {

using Memo = cachetrie::CacheTrie<std::uint64_t, std::uint32_t>;

std::uint32_t collatz_len(Memo& memo, std::uint64_t x,
                          std::atomic<std::uint64_t>& computed) {
  // Walk forward until a memoized value (or 1), recording the path, then
  // fill the table backwards. put_if_absent keeps the table consistent when
  // two workers race on the same suffix: first writer wins, both agree.
  std::vector<std::uint64_t> path;
  std::uint64_t cur = x;
  std::uint32_t base = 0;
  while (cur != 1) {
    if (const auto hit = memo.lookup(cur)) {
      base = *hit;
      break;
    }
    path.push_back(cur);
    cur = (cur % 2 == 0) ? cur / 2 : 3 * cur + 1;
  }
  std::uint32_t len = base;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    ++len;
    if (memo.put_if_absent(*it, len)) {
      computed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return len;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t limit =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 300000;

  Memo memo;
  std::atomic<std::uint64_t> computed{0};
  std::atomic<std::uint64_t> best_x{1};
  std::atomic<std::uint32_t> best_len{0};

  const double ms = cachetrie::harness::run_team_ms(threads, [&](int t) {
    // Interleaved ranges: workers constantly collide on shared suffixes,
    // which is exactly what the memo table is for.
    for (std::uint64_t x = 2 + static_cast<std::uint64_t>(t); x < limit;
         x += static_cast<std::uint64_t>(threads)) {
      const std::uint32_t len = collatz_len(memo, x, computed);
      std::uint32_t prev = best_len.load(std::memory_order_relaxed);
      while (len > prev &&
             !best_len.compare_exchange_weak(prev, len,
                                             std::memory_order_relaxed)) {
      }
      if (len > prev) best_x.store(x, std::memory_order_relaxed);
    }
  });

  // Verify a sample against a memo-free recomputation.
  std::uint64_t wrong = 0;
  for (std::uint64_t x = 2; x < limit; x += 1777) {
    std::uint32_t len = 0;
    for (std::uint64_t cur = x; cur != 1;
         cur = (cur % 2 == 0) ? cur / 2 : 3 * cur + 1) {
      ++len;
    }
    if (memo.lookup(x).value_or(0) != len) ++wrong;
  }

  std::printf("threads          : %d\n", threads);
  std::printf("starting points  : %llu\n",
              static_cast<unsigned long long>(limit - 2));
  std::printf("table entries    : %zu\n", memo.size());
  std::printf("entries computed : %llu (sharing saved the rest)\n",
              static_cast<unsigned long long>(computed.load()));
  std::printf("longest chain    : %u steps (from %llu)\n", best_len.load(),
              static_cast<unsigned long long>(best_x.load()));
  std::printf("wall time        : %.1f ms\n", ms);
  std::printf("sample mismatches: %llu (must be 0)\n",
              static_cast<unsigned long long>(wrong));
  std::printf("cache level      : %d\n", memo.cache_level());
  return wrong == 0 ? 0 : 1;
}
