// cachetrie_server.cpp — a standalone cache server over the serving layer:
// a shard-per-core epoll reactor (src/net/) fronting a bounded cache-trie,
// speaking the length-prefixed binary protocol (src/net/proto.hpp) on
// 127.0.0.1. Run it in one terminal and poke it with the built-in client
// from another, or point bench/fig15_served_load-style load at it.
//
//   run server:  ./build/examples/cachetrie_server [port] [shards] [ceiling_mb]
//                    [--stats-interval <secs>]
//                (port 0 = kernel-assigned, printed at startup;
//                 --stats-interval prints live interval deltas — op rates,
//                 gauge movement, interval latency quantiles — every pull)
//   run client:  ./build/examples/cachetrie_server --client <port> [ops]
//                (loopback smoke: put/get/remove round trips + a report)
//   introspect:  ./build/examples/cachetrie_server --stats <port>
//                (one kStats pull: the server's metrics snapshot + interval
//                 delta as JSON over the wire)
//                ./build/examples/cachetrie_server --trace-ctl <port> on|off|dump
//                (flip the server's flight recorder, or trigger a dump)
//
// Ctrl-C drains: every shard stops accepting work (late requests draw
// kShed with the draining flag), flushes buffered replies, and the process
// exits with a per-shard serve report.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cachetrie/evict.hpp"
#include "net/client.hpp"
#include "net/proto.hpp"
#include "net/reactor.hpp"
#include "obs/interval.hpp"
#include "obs/metrics.hpp"

namespace {

namespace net = cachetrie::net;
namespace proto = cachetrie::net::proto;
using BoundedTrie =
    cachetrie::evict::BoundedCacheTrie<std::uint64_t, std::uint64_t>;

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true, std::memory_order_release); }

int run_client(std::uint16_t port, std::uint64_t ops) {
  net::Client client{port};
  if (!client.ok()) {
    std::fprintf(stderr, "connect to 127.0.0.1:%u failed\n", port);
    return 1;
  }
  std::uint64_t ok = 0, shed = 0, other = 0;
  const std::uint64_t t0 = proto::now_us();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto p = client.put(i % 4096, i);
    const auto g = client.get(i % 4096);
    for (const auto& r : {p, g}) {
      if (r.ok()) {
        ++ok;
      } else if (r.status == proto::Status::kShed) {
        ++shed;
      } else {
        ++other;
      }
    }
  }
  const double secs = static_cast<double>(proto::now_us() - t0) / 1e6;
  std::printf("client: %llu ops in %.2fs (%.0f op/s) — ok=%llu shed=%llu "
              "other=%llu\n",
              static_cast<unsigned long long>(2 * ops), secs,
              static_cast<double>(2 * ops) / secs,
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(other));
  return other == 0 ? 0 : 1;
}

// One kStats pull: print the JSON document the server handed back — a
// registry snapshot plus the serving shard's interval delta. Piping it
// through `python3 -m json.tool` pretty-prints it; the document is plain
// JSON by contract (tests/net_introspect_test.cpp validates the grammar).
int run_stats(std::uint16_t port) {
  net::Client client{port};
  if (!client.ok()) {
    std::fprintf(stderr, "connect to 127.0.0.1:%u failed\n", port);
    return 1;
  }
  const auto s = client.stats();
  if (!s.ok()) {
    std::fprintf(stderr, "stats pull failed: %s\n",
                 proto::status_name(s.status));
    return 1;
  }
  std::printf("%s\n", s.json.c_str());
  return 0;
}

int run_trace_ctl(std::uint16_t port, const char* action) {
  proto::TraceCtl ctl;
  if (std::strcmp(action, "on") == 0) {
    ctl = proto::TraceCtl::kEnable;
  } else if (std::strcmp(action, "off") == 0) {
    ctl = proto::TraceCtl::kDisable;
  } else if (std::strcmp(action, "dump") == 0) {
    ctl = proto::TraceCtl::kDump;
  } else {
    std::fprintf(stderr, "trace-ctl action must be on|off|dump\n");
    return 2;
  }
  net::Client client{port};
  if (!client.ok()) {
    std::fprintf(stderr, "connect to 127.0.0.1:%u failed\n", port);
    return 1;
  }
  const auto r = client.trace_ctl(ctl);
  if (!r.ok()) {
    std::fprintf(stderr, "trace-ctl failed: %s\n",
                 proto::status_name(r.status));
    return 1;
  }
  if (ctl == proto::TraceCtl::kDump) {
    std::printf("dump %s (server writes TRACE_trace_ctl.json into "
                "$CACHETRIE_TRACE_OUT or its cwd)\n",
                r.value != 0 ? "written" : "failed — recorder off or I/O");
    return r.value != 0 ? 0 : 1;
  }
  std::printf("flight recorder %s\n", r.value != 0 ? "enabled" : "disabled");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--client") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --client <port> [ops]\n", argv[0]);
      return 2;
    }
    const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));
    const std::uint64_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                       : 10000;
    return run_client(port, ops);
  }
  if (argc > 1 && std::strcmp(argv[1], "--stats") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --stats <port>\n", argv[0]);
      return 2;
    }
    return run_stats(static_cast<std::uint16_t>(std::atoi(argv[2])));
  }
  if (argc > 1 && std::strcmp(argv[1], "--trace-ctl") == 0) {
    if (argc < 4) {
      std::fprintf(stderr, "usage: %s --trace-ctl <port> on|off|dump\n",
                   argv[0]);
      return 2;
    }
    return run_trace_ctl(static_cast<std::uint16_t>(std::atoi(argv[2])),
                         argv[3]);
  }

  // Server mode: positional [port] [shards] [ceiling_mb], plus an optional
  // --stats-interval <secs> anywhere after them.
  std::vector<const char*> pos;
  double stats_interval_s = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-interval") == 0 && i + 1 < argc) {
      stats_interval_s = std::atof(argv[++i]);
    } else {
      pos.push_back(argv[i]);
    }
  }
  const auto port =
      static_cast<std::uint16_t>(pos.size() > 0 ? std::atoi(pos[0]) : 0);
  const std::size_t shards =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoi(pos[1]))
                     : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t ceiling_mb =
      pos.size() > 2 ? static_cast<std::size_t>(std::atoi(pos[2])) : 64;

  cachetrie::evict::BoundedConfig bcfg;
  bcfg.ceiling_bytes = ceiling_mb << 20;
  BoundedTrie map{bcfg};

  net::ServerConfig scfg;
  scfg.port = port;
  scfg.shards = shards;
  net::Server<BoundedTrie> server{map, scfg};
  if (!server.ok() || !server.start()) {
    std::fprintf(stderr, "bind/listen on 127.0.0.1:%u failed\n", port);
    return 1;
  }
  std::printf("cachetrie_server: 127.0.0.1:%u — %zu shard(s), %zu MiB "
              "ceiling (Ctrl-C drains)\n",
              server.port(), server.shard_count(), ceiling_mb);
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // --stats-interval: a local pull loop over the in-process registry — the
  // same differ the shards use to answer kStats, owned here by the main
  // thread (one differ per puller; they never share).
  cachetrie::obs::IntervalDiffer differ;
  if (stats_interval_s > 0.0) {
    (void)differ.advance(cachetrie::obs::registry().snapshot(),
                         proto::now_us());  // prime the base
  }
  std::uint64_t next_pull_us =
      proto::now_us() +
      static_cast<std::uint64_t>(stats_interval_s * 1e6);
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (stats_interval_s > 0.0 && proto::now_us() >= next_pull_us) {
      const std::uint64_t now = proto::now_us();
      differ.advance(cachetrie::obs::registry().snapshot(), now)
          .print_table(std::cout);
      std::cout.flush();
      next_pull_us =
          now + static_cast<std::uint64_t>(stats_interval_s * 1e6);
    }
  }

  std::printf("\ndraining...\n");
  server.stop();
  const auto t = server.totals();
  std::printf("served=%llu shed=%llu deadline_expired=%llu "
              "backpressure_kills=%llu proto_errors=%llu conns=%llu "
              "resident=%zu bytes\n",
              static_cast<unsigned long long>(t.served),
              static_cast<unsigned long long>(t.shed),
              static_cast<unsigned long long>(t.deadline_expired),
              static_cast<unsigned long long>(t.backpressure_kills),
              static_cast<unsigned long long>(t.proto_errors),
              static_cast<unsigned long long>(t.conns_adopted),
              map.resident_bytes());
  return 0;
}
