// cachetrie_server.cpp — a standalone cache server over the serving layer:
// a shard-per-core epoll reactor (src/net/) fronting a bounded cache-trie,
// speaking the length-prefixed binary protocol (src/net/proto.hpp) on
// 127.0.0.1. Run it in one terminal and poke it with the built-in client
// from another, or point bench/fig15_served_load-style load at it.
//
//   run server:  ./build/examples/cachetrie_server [port] [shards] [ceiling_mb]
//                (port 0 = kernel-assigned, printed at startup)
//   run client:  ./build/examples/cachetrie_server --client <port> [ops]
//                (loopback smoke: put/get/remove round trips + a report)
//
// Ctrl-C drains: every shard stops accepting work (late requests draw
// kShed with the draining flag), flushes buffered replies, and the process
// exits with a per-shard serve report.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "cachetrie/evict.hpp"
#include "net/client.hpp"
#include "net/proto.hpp"
#include "net/reactor.hpp"

namespace {

namespace net = cachetrie::net;
namespace proto = cachetrie::net::proto;
using BoundedTrie =
    cachetrie::evict::BoundedCacheTrie<std::uint64_t, std::uint64_t>;

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true, std::memory_order_release); }

int run_client(std::uint16_t port, std::uint64_t ops) {
  net::Client client{port};
  if (!client.ok()) {
    std::fprintf(stderr, "connect to 127.0.0.1:%u failed\n", port);
    return 1;
  }
  std::uint64_t ok = 0, shed = 0, other = 0;
  const std::uint64_t t0 = proto::now_us();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto p = client.put(i % 4096, i);
    const auto g = client.get(i % 4096);
    for (const auto& r : {p, g}) {
      if (r.ok()) {
        ++ok;
      } else if (r.status == proto::Status::kShed) {
        ++shed;
      } else {
        ++other;
      }
    }
  }
  const double secs = static_cast<double>(proto::now_us() - t0) / 1e6;
  std::printf("client: %llu ops in %.2fs (%.0f op/s) — ok=%llu shed=%llu "
              "other=%llu\n",
              static_cast<unsigned long long>(2 * ops), secs,
              static_cast<double>(2 * ops) / secs,
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(other));
  return other == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--client") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --client <port> [ops]\n", argv[0]);
      return 2;
    }
    const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));
    const std::uint64_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                       : 10000;
    return run_client(port, ops);
  }

  const auto port =
      static_cast<std::uint16_t>(argc > 1 ? std::atoi(argv[1]) : 0);
  const std::size_t shards =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
               : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t ceiling_mb =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 64;

  cachetrie::evict::BoundedConfig bcfg;
  bcfg.ceiling_bytes = ceiling_mb << 20;
  BoundedTrie map{bcfg};

  net::ServerConfig scfg;
  scfg.port = port;
  scfg.shards = shards;
  net::Server<BoundedTrie> server{map, scfg};
  if (!server.ok() || !server.start()) {
    std::fprintf(stderr, "bind/listen on 127.0.0.1:%u failed\n", port);
    return 1;
  }
  std::printf("cachetrie_server: 127.0.0.1:%u — %zu shard(s), %zu MiB "
              "ceiling (Ctrl-C drains)\n",
              server.port(), server.shard_count(), ceiling_mb);
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("\ndraining...\n");
  server.stop();
  const auto t = server.totals();
  std::printf("served=%llu shed=%llu deadline_expired=%llu "
              "backpressure_kills=%llu proto_errors=%llu conns=%llu "
              "resident=%zu bytes\n",
              static_cast<unsigned long long>(t.served),
              static_cast<unsigned long long>(t.shed),
              static_cast<unsigned long long>(t.deadline_expired),
              static_cast<unsigned long long>(t.backpressure_kills),
              static_cast<unsigned long long>(t.proto_errors),
              static_cast<unsigned long long>(t.conns_adopted),
              map.resident_bytes());
  return 0;
}
